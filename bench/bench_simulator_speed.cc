// google-benchmark microbenchmarks of the simulator itself: simulated
// instructions per wall-clock second per mode, plus the safe-shuffle
// algorithm's own throughput. Useful for sizing experiment budgets.
#include <benchmark/benchmark.h>

#include "blackjack/shuffle.h"
#include "common/rng.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace {

void BM_CoreSimulation(benchmark::State& state) {
  const auto mode = static_cast<bj::Mode>(state.range(0));
  const bj::Program program =
      bj::generate_workload(bj::profile_by_name("gcc"));
  for (auto _ : state) {
    bj::Core core(program, mode);
    core.set_oracle_check(false);
    core.run(10000, 4000000);
    benchmark::DoNotOptimize(core.cycle());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoreSimulation)
    ->Arg(static_cast<int>(bj::Mode::kSingle))
    ->Arg(static_cast<int>(bj::Mode::kSrt))
    ->Arg(static_cast<int>(bj::Mode::kBlackjack))
    ->Unit(benchmark::kMillisecond);

void BM_SafeShuffle(benchmark::State& state) {
  bj::Rng rng(99);
  std::vector<std::vector<bj::ShuffleInst>> packets;
  for (int i = 0; i < 1024; ++i) {
    std::vector<bj::ShuffleInst> packet;
    const int n = 1 + static_cast<int>(rng.next_below(4));
    int used[bj::kNumFuClasses] = {};
    for (int j = 0; j < n; ++j) {
      const auto fu = static_cast<bj::FuClass>(rng.next_below(5));
      const int ways = fu == bj::FuClass::kIntAlu ? 4 : 2;
      if (used[static_cast<int>(fu)] >= ways) continue;
      packet.push_back(bj::ShuffleInst{
          fu, static_cast<int>(rng.next_below(4)),
          used[static_cast<int>(fu)]++});
    }
    if (!packet.empty()) packets.push_back(std::move(packet));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bj::safe_shuffle(packets[i % packets.size()], 4));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SafeShuffle);

void BM_Emulator(benchmark::State& state) {
  const bj::Program program =
      bj::generate_workload(bj::profile_by_name("gcc"));
  for (auto _ : state) {
    bj::Emulator emu(program);
    emu.run(100000);
    benchmark::DoNotOptimize(emu.retired());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_Emulator)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
