// ECC-vs-BlackJack-vs-combined coverage matrix for the storage-array fault
// sites: for each (workload, mode, array, codec) cell, run a seed-derived
// sample of the array's exhaustive single-bit stuck-at space and tally the
// outcome histogram plus the ECC layer's correct/detect activity. The
// interesting comparison per array:
//
//   mode=single|srt, codec=none   — the bare array (the exposure baseline)
//   mode=single|srt, codec=C      — ECC alone
//   mode=blackjack,  codec=none   — BlackJack redundancy alone
//   mode=blackjack,  codec=C      — combined
//
// The artifact doubles as a gate: any single-bit storage fault that ends in
// SDC (or detected-late) under a SEC codec is a correctness bug — SEC repairs
// every single-bit error at the read port, so nothing corrupt can propagate.
// The bench exits 1 if a protected cell shows sdc/detected-late.
//
//   bench_ecc_coverage [--out <path>] [--quick]
//
// --quick shrinks the sample and workload list for CI smoke runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "fault/ecc.h"
#include "harness/campaign.h"
#include "workload/profile.h"

namespace {

struct Cell {
  std::string workload;
  bj::Mode mode = bj::Mode::kSingle;
  bj::FaultSite site = bj::FaultSite::kIqPayload;
  bj::EccCodec codec = bj::EccCodec::kNone;

  int runs = 0;
  int activated = 0;
  std::map<bj::FaultOutcome, int> outcomes;
  int ecc_corrected_runs = 0;
  int ecc_detected_runs = 0;
};

const char* array_name(bj::FaultSite site) {
  switch (site) {
    case bj::FaultSite::kIqPayload: return "payload";
    case bj::FaultSite::kRegfileEntry: return "regfile";
    case bj::FaultSite::kLvqSlot: return "lvq";
    case bj::FaultSite::kDtqSlot: return "dtq";
    default: return "?";
  }
}

void configure_codec(bj::CoreParams& params, bj::FaultSite site,
                     bj::EccCodec codec) {
  switch (site) {
    case bj::FaultSite::kIqPayload: params.payload_ecc = codec; break;
    case bj::FaultSite::kRegfileEntry: params.regfile_ecc = codec; break;
    case bj::FaultSite::kLvqSlot: params.lvq_ecc = codec; break;
    case bj::FaultSite::kDtqSlot: params.dtq_ecc = codec; break;
    default: break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ecc_coverage.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: bench_ecc_coverage [--out <path>] [--quick]\n";
      return 2;
    }
  }

  const std::vector<std::string> workloads =
      quick ? std::vector<std::string>{"gcc"}
            : std::vector<std::string>{"gcc", "eon"};
  const int test_count = quick ? 16 : 32;
  const std::uint64_t budget = quick ? 1500 : 3000;
  // Checker-side queue corruption (LVQ/DTQ) only surfaces when the poisoned
  // trailing value reaches a comparison point (a trailing store, a
  // dependence check); within a 3000-commit window most runs end first and
  // the bare cell reads as all-benign. Give those arrays a longer window so
  // the bare column shows the detections ECC then suppresses.
  const std::uint64_t queue_budget = quick ? 6000 : 20000;

  // Which modes exercise which array: the LVQ only exists in redundant
  // modes, the DTQ only in blackjack. The non-redundant (or less redundant)
  // mode in each pair is the "ECC alone" column.
  struct ArrayModes {
    bj::FaultSite site;
    std::vector<bj::Mode> modes;
  };
  const std::vector<ArrayModes> arrays = {
      {bj::FaultSite::kIqPayload, {bj::Mode::kSingle, bj::Mode::kBlackjack}},
      {bj::FaultSite::kRegfileEntry,
       {bj::Mode::kSingle, bj::Mode::kBlackjack}},
      {bj::FaultSite::kLvqSlot, {bj::Mode::kSrt, bj::Mode::kBlackjack}},
      {bj::FaultSite::kDtqSlot, {bj::Mode::kBlackjack}},
  };
  const std::vector<bj::EccCodec> codecs = {
      bj::EccCodec::kNone, bj::EccCodec::kHamming, bj::EccCodec::kHsiao};

  std::vector<Cell> cells;
  bool protected_cells_clean = true;

  for (const std::string& workload : workloads) {
    const bj::Program program =
        bj::generate_workload(bj::profile_by_name(workload));
    for (const ArrayModes& array : arrays) {
      for (bj::Mode mode : array.modes) {
        for (bj::EccCodec codec : codecs) {
          bj::CampaignConfig config;
          config.mode = mode;
          config.sites = {array.site};
          config.exhaustive = true;
          // The physical register file is by far the largest array (2560
          // rows), and a short run's rename stream only touches its low
          // rows, so uniform draws mostly land in cold cells. Oversample it
          // so the live-row faults that ECC actually repairs show up.
          config.test_count =
              array.site == bj::FaultSite::kRegfileEntry ? test_count * 4
                                                         : test_count;
          config.seed = 20260808;
          config.budget_commits = (array.site == bj::FaultSite::kLvqSlot ||
                                   array.site == bj::FaultSite::kDtqSlot)
                                      ? queue_budget
                                      : budget;
          configure_codec(config.params, array.site, codec);

          bj::ParallelCampaignOptions options;
          options.jobs = 0;  // one worker per hardware thread
          const bj::CampaignResult result =
              bj::run_campaign_parallel(program, config, options);

          Cell cell;
          cell.workload = workload;
          cell.mode = mode;
          cell.site = array.site;
          cell.codec = codec;
          cell.runs = static_cast<int>(result.runs.size());
          for (const bj::FaultRun& run : result.runs) {
            if (run.activations > 0 || run.ecc_corrected > 0) {
              ++cell.activated;
            }
            ++cell.outcomes[run.outcome];
            if (run.ecc_corrected > 0) ++cell.ecc_corrected_runs;
            if (run.ecc_detected > 0) ++cell.ecc_detected_runs;
          }
          const int sdc = cell.outcomes[bj::FaultOutcome::kSdc];
          const int late = cell.outcomes[bj::FaultOutcome::kDetectedLate];
          if (codec != bj::EccCodec::kNone && (sdc > 0 || late > 0)) {
            protected_cells_clean = false;
            std::cerr << "FAIL: " << workload << "/" << bj::mode_name(mode)
                      << "/" << array_name(array.site) << "/"
                      << bj::ecc_codec_name(codec) << ": " << sdc << " sdc, "
                      << late << " detected-late under SEC\n";
          }
          std::fprintf(
              stderr, "%-4s %-12s %-8s %-8s  sdc=%-2d benign=%-2d ecc=%d\n",
              workload.c_str(), bj::mode_name(mode), array_name(array.site),
              bj::ecc_codec_name(codec), sdc,
              cell.outcomes[bj::FaultOutcome::kBenign],
              cell.ecc_corrected_runs);
          cells.push_back(std::move(cell));
        }
      }
    }
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"ecc_coverage\",\n"
      << "  \"test_count\": " << test_count << ",\n"
      << "  \"budget_commits\": " << budget << ",\n"
      << "  \"queue_budget_commits\": " << queue_budget << ",\n"
      << "  \"protected_cells_sdc_free\": "
      << (protected_cells_clean ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"workload\": \"" << c.workload << "\", \"mode\": \""
        << bj::mode_name(c.mode) << "\", \"array\": \"" << array_name(c.site)
        << "\", \"codec\": \"" << bj::ecc_codec_name(c.codec)
        << "\", \"runs\": " << c.runs << ", \"activated\": " << c.activated
        << ", \"ecc_corrected_runs\": " << c.ecc_corrected_runs
        << ", \"ecc_detected_runs\": " << c.ecc_detected_runs
        << ", \"outcomes\": {";
    bool first = true;
    for (const auto& [outcome, n] : c.outcomes) {
      if (n == 0) continue;
      out << (first ? "" : ", ") << '"' << bj::fault_outcome_name(outcome)
          << "\": " << n;
      first = false;
    }
    out << "}}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return protected_cells_clean ? 0 : 1;
}
