// Jobs-sweep bench for the lock-free campaign distribution path: runs the
// same fault-injection campaign at jobs ∈ {1,2,4,8,16}, checks the canonical
// JSONL is byte-identical at every point (exit 1 if not — determinism is the
// contract, scaling is the measurement), and emits a machine-readable
// artifact with items/s and scaling efficiency per jobs count.
//
//   bench_jobs_sweep [--out <path>] [--determinism-only]
//
// --determinism-only is for the 1-CPU CI VM: it shrinks the campaign and
// marks the artifact's timings unreliable, so the target always runs and
// always asserts determinism even where scaling cannot be measured. Without
// the flag the full-size sweep is intended for a real multicore box
// (ROADMAP item 1's 16–64-job scaling study).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/campaign.h"
#include "workload/profile.h"

namespace {

// Wall-clock-free record lines sorted by fault index — the same canonical
// form the differential-replay tests compare.
std::vector<std::string> canonical_jsonl(const std::string& raw) {
  std::vector<std::pair<long, std::string>> keyed;
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"record\":\"header\"") != std::string::npos) continue;
    const auto sec = line.find(",\"seconds\":");
    if (sec != std::string::npos) {
      line.erase(sec, line.find('}', sec) - sec);
    }
    const auto idx = line.find("\"index\":");
    if (idx == std::string::npos) continue;
    keyed.emplace_back(std::stol(line.substr(idx + 8)), line);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> lines;
  lines.reserve(keyed.size());
  for (auto& [index, text] : keyed) lines.push_back(std::move(text));
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_jobs_sweep.json";
  bool determinism_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--determinism-only") == 0) {
      determinism_only = true;
    } else {
      std::cerr << "usage: bench_jobs_sweep [--out <path>]"
                   " [--determinism-only]\n";
      return 2;
    }
  }

  bj::WorkloadProfile profile = bj::profile_by_name("eon");
  profile.iterations = 0;
  const bj::Program program = bj::generate_workload(profile);

  bj::CampaignConfig config;
  config.mode = bj::Mode::kBlackjack;
  config.seed = 20260808;
  config.num_faults = determinism_only ? 16 : 64;
  config.budget_commits = determinism_only ? 1000 : 3000;

  const std::vector<int> sweep = {1, 2, 4, 8, 16};
  std::vector<double> wall(sweep.size(), 0.0);
  std::vector<double> items_per_s(sweep.size(), 0.0);
  std::vector<std::string> jsonl(sweep.size());

  for (std::size_t s = 0; s < sweep.size(); ++s) {
    std::ostringstream sink;
    bj::ParallelCampaignOptions options;
    options.jobs = sweep[s];
    options.jsonl = &sink;
    bj::CampaignStats stats;
    bj::run_campaign_parallel(program, config, options, &stats);
    wall[s] = stats.wall_seconds;
    items_per_s[s] = stats.runs_per_second;
    jsonl[s] = sink.str();
    std::fprintf(stderr, "jobs=%-2d  %7.3fs  %8.1f runs/s\n", sweep[s],
                 wall[s], items_per_s[s]);
  }

  // Determinism assertion: every jobs count must produce the same canonical
  // records as jobs=1. This is the part that gates on any machine.
  const std::vector<std::string> base = canonical_jsonl(jsonl[0]);
  bool deterministic = base.size() == static_cast<std::size_t>(config.num_faults);
  for (std::size_t s = 1; s < sweep.size() && deterministic; ++s) {
    deterministic = canonical_jsonl(jsonl[s]) == base;
    if (!deterministic) {
      std::cerr << "FAIL: jobs=" << sweep[s]
                << " canonical JSONL differs from jobs=1\n";
    }
  }
  if (!deterministic) return 1;
  std::cerr << "determinism: OK (" << base.size() << " records identical at "
            << sweep.size() << " jobs counts)\n";

  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"jobs_sweep\",\n"
      << "  \"workload\": \"" << profile.name << "\",\n"
      << "  \"mode\": \"blackjack\",\n"
      << "  \"num_faults\": " << config.num_faults << ",\n"
      << "  \"budget_commits\": " << config.budget_commits << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      // Timings from a sweep the machine cannot physically parallelize are
      // determinism evidence, not scaling evidence.
      << "  \"timings_reliable\": "
      << (!determinism_only && hw >= 16 ? "true" : "false") << ",\n"
      << "  \"deterministic\": true,\n"
      << "  \"points\": [\n";
  for (std::size_t s = 0; s < sweep.size(); ++s) {
    const double speedup = wall[s] > 0.0 ? wall[0] / wall[s] : 0.0;
    out << "    {\"jobs\": " << sweep[s] << ", \"wall_seconds\": " << wall[s]
        << ", \"items_per_second\": " << items_per_s[s]
        << ", \"speedup\": " << speedup
        << ", \"efficiency\": " << speedup / sweep[s] << "}"
        << (s + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
