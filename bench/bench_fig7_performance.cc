// Figure 7: performance of SRT, BlackJack-NS (no shuffle), and BlackJack,
// normalized to non-fault-tolerant single-thread performance, benchmarks
// ordered left-to-right by increasing single-thread IPC (as in the paper).
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  std::cout << "=== Figure 7: normalized performance (single thread = 100%) "
               "===\n"
            << "paper anchors: SRT avg 79% (21% slowdown); BlackJack avg 67% "
               "(33% slowdown, 15% beyond SRT); BlackJack-NS between them "
               "(shuffle's packet splits cost ~5%); higher-IPC benchmarks "
               "degrade more.\n\n";

  const std::vector<SimResult> single = run_all(Mode::kSingle);
  const std::vector<SimResult> srt = run_all(Mode::kSrt);
  const std::vector<SimResult> bjns = run_all(Mode::kBlackjackNs);
  const std::vector<SimResult> bj = run_all(Mode::kBlackjack);

  std::vector<std::size_t> order(single.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return single[a].ipc < single[b].ipc;
  });

  Table t({"benchmark", "single IPC", "SRT %", "BlackJack-NS %",
           "BlackJack %"});
  std::vector<double> srt_norm, bjns_norm, bj_norm;
  for (const std::size_t i : order) {
    const double base = static_cast<double>(single[i].cycles);
    const double n_srt = base / static_cast<double>(srt[i].cycles);
    const double n_bjns = base / static_cast<double>(bjns[i].cycles);
    const double n_bj = base / static_cast<double>(bj[i].cycles);
    t.begin_row();
    t.add(single[i].workload);
    t.add(single[i].ipc, 3);
    t.add_percent(n_srt);
    t.add_percent(n_bjns);
    t.add_percent(n_bj);
    srt_norm.push_back(n_srt);
    bjns_norm.push_back(n_bjns);
    bj_norm.push_back(n_bj);
  }
  t.begin_row();
  t.add("average");
  t.add("");
  t.add_percent(average(srt_norm));
  t.add_percent(average(bjns_norm));
  t.add_percent(average(bj_norm));

  std::cout << t.to_text();
  std::cout << "\nBlackJack slowdown beyond SRT: "
            << 100.0 * (1.0 - average(bj_norm) / average(srt_norm))
            << "% (paper: 15%)\n";
  std::cout << "\ncsv:fig7\n" << t.to_csv();
  return 0;
}
