// Figure 6: percentage of issue cycles in which every issued instruction
// comes from one context (issue burstiness), BlackJack mode. Burstiness is
// what makes leading-trailing interference rare.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  std::cout << "=== Figure 6: issue cycles with all instructions from one "
               "context (BlackJack) ===\n"
            << "paper anchors: average 70%; high-IPC gzip/crafty/bzip lowest "
               "at 54-63%.\n\n";

  const std::vector<SimResult> results = run_all(Mode::kBlackjack);

  Table t({"benchmark", "single-context issue cycles %", "leading IPC"});
  std::vector<double> burst;
  for (const SimResult& r : results) {
    t.begin_row();
    t.add(r.workload);
    t.add_percent(r.burstiness);
    t.add(r.ipc, 3);
    burst.push_back(r.burstiness);
  }
  t.begin_row();
  t.add("average");
  t.add_percent(average(burst));
  t.add("");

  std::cout << t.to_text() << "\ncsv:fig6\n" << t.to_csv();
  return 0;
}
