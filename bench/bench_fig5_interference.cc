// Figure 5: percent of issue cycles in which trailing-trailing and
// leading-trailing interference cause spatial-diversity violations, per
// benchmark, in full BlackJack mode.
//
// Note: this reproduction's default core uses packet-serial trailing
// dispatch, which (by design) suppresses trailing-trailing interference
// almost entirely; the paper's machine shows a small nonzero TT rate. The
// ablation bench (bench_ablations) disables the gate and recovers the
// paper's TT mechanism, including its elevation on low-IPC FP benchmarks.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  std::cout << "=== Figure 5: issue cycles losing diversity to interference "
               "(BlackJack) ===\n"
            << "paper anchors: trailing-trailing avg 0.5% (equake elevated "
               "at 1.5%), leading-trailing avg 2.3% (gzip worst at 7.0%, "
               "bzip 5.6%).\n\n";

  const std::vector<SimResult> results = run_all(Mode::kBlackjack);

  Table t({"benchmark", "trailing-trailing %", "leading-trailing %",
           "other %"});
  std::vector<double> tt, lt;
  for (const SimResult& r : results) {
    t.begin_row();
    t.add(r.workload);
    t.add_percent(r.tt_interference, 2);
    t.add_percent(r.lt_interference, 2);
    t.add_percent(r.other_diversity_loss, 2);
    tt.push_back(r.tt_interference);
    lt.push_back(r.lt_interference);
  }
  t.begin_row();
  t.add("average");
  t.add_percent(average(tt), 2);
  t.add_percent(average(lt), 2);
  t.add("");

  std::cout << t.to_text() << "\ncsv:fig5\n" << t.to_csv();
  return 0;
}
