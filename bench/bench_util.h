// Shared helpers for the figure/table reproduction benches: runs the 16
// benchmark kernels in the requested modes with the environment-configured
// instruction budget. Each bench prints the paper's reference values inline
// next to the measured ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/driver.h"
#include "workload/profile.h"

namespace bj::bench {

inline SimRequest default_request(Mode mode) {
  SimRequest req;
  req.mode = mode;
  req.warmup_commits = static_cast<std::uint64_t>(sim_warmup_budget());
  req.budget_commits = static_cast<std::uint64_t>(sim_instruction_budget());
  return req;
}

// Runs every benchmark in `mode`; returns results in profile order.
inline std::vector<SimResult> run_all(Mode mode) {
  std::vector<SimResult> results;
  for (const WorkloadProfile& profile : spec2000_profiles()) {
    results.push_back(run_workload(profile, default_request(mode)));
  }
  return results;
}

inline double average(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace bj::bench
