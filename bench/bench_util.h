// Shared helpers for the figure/table reproduction benches: runs the 16
// benchmark kernels in the requested modes with the environment-configured
// instruction budget. Each bench prints the paper's reference values inline
// next to the measured ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/driver.h"
#include "harness/worker_pool.h"
#include "workload/profile.h"

namespace bj::bench {

inline SimRequest default_request(Mode mode) {
  SimRequest req;
  req.mode = mode;
  req.warmup_commits = static_cast<std::uint64_t>(sim_warmup_budget());
  req.budget_commits = static_cast<std::uint64_t>(sim_instruction_budget());
  return req;
}

// Worker threads for the sweep helpers: BJ_JOBS, default one per hardware
// thread.
inline int bench_jobs() { return static_cast<int>(env_int("BJ_JOBS", 0)); }

// Wall-clock accounting for a parallel sweep. serial_estimate_seconds is the
// sum of the individual simulations' own durations — what the sweep would
// have cost end-to-end on one worker.
struct SweepStats {
  int jobs = 1;
  double wall_seconds = 0.0;
  double serial_estimate_seconds = 0.0;
  double speedup() const {
    return wall_seconds > 0.0 ? serial_estimate_seconds / wall_seconds : 0.0;
  }
};

// Runs every benchmark in `mode` across the harness worker pool; results are
// keyed by profile index, so the output is identical to a serial sweep.
inline std::vector<SimResult> run_all(Mode mode, SweepStats* stats = nullptr) {
  using Clock = std::chrono::steady_clock;
  const std::vector<WorkloadProfile>& profiles = spec2000_profiles();
  std::vector<SimResult> results(profiles.size());
  std::mutex mu;
  double serial_estimate = 0.0;
  const auto sweep_start = Clock::now();
  parallel_for(bench_jobs(), profiles.size(), [&](std::size_t i) {
    const auto run_start = Clock::now();
    results[i] = run_workload(profiles[i], default_request(mode));
    const double seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();
    std::lock_guard<std::mutex> lock(mu);
    serial_estimate += seconds;
  });
  if (stats) {
    stats->jobs = resolve_jobs(bench_jobs());
    stats->wall_seconds =
        std::chrono::duration<double>(Clock::now() - sweep_start).count();
    stats->serial_estimate_seconds = serial_estimate;
  }
  return results;
}

inline double average(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace bj::bench
