// Seed stability: how much of any reported number is workload-instance
// noise? Re-generates representative kernels from perturbed seeds (same
// profile, different instruction streams) and reports mean ± stddev of the
// headline metrics. Narrow deviations mean the figures reflect the profile,
// not one lucky instruction sequence.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  const int seeds = static_cast<int>(env_int("BJ_SEEDS", 4));
  std::cout << "=== Seed stability: " << seeds
            << " kernel instances per profile (BlackJack mode) ===\n\n";

  Table t({"workload", "IPC mean", "IPC sd", "coverage % mean",
           "coverage % sd", "LT % mean", "LT % sd", "burstiness % mean"});
  for (const char* name : {"equake", "gcc", "apsi", "vortex"}) {
    SimRequest req = default_request(Mode::kBlackjack);
    req.warmup_commits = std::min<std::uint64_t>(req.warmup_commits, 20000);
    req.budget_commits = std::min<std::uint64_t>(req.budget_commits, 40000);
    const AggregateResult agg =
        run_workload_seeds(profile_by_name(name), req, seeds);
    t.begin_row();
    t.add(name);
    t.add(agg.ipc.mean(), 3);
    t.add(agg.ipc.stddev(), 3);
    t.add(100.0 * agg.coverage_total.mean(), 1);
    t.add(100.0 * agg.coverage_total.stddev(), 2);
    t.add(100.0 * agg.lt_interference.mean(), 2);
    t.add(100.0 * agg.lt_interference.stddev(), 2);
    t.add(100.0 * agg.burstiness.mean(), 1);
  }
  std::cout << t.to_text()
            << "\nCoverage standard deviations of a point or two mean the "
               "Figure 4 comparisons are profile properties, not "
               "instruction-sequence luck.\n";
  return 0;
}
