// Quickstart: build a tiny program with the ProgramBuilder, run it on the
// BlackJack core, and inspect what the redundancy machinery did.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "isa/builder.h"
#include "pipeline/core.h"

int main() {
  using namespace bj;

  // 1. Write a program: sum the integers 1..1000 and store the result.
  ProgramBuilder b("quickstart");
  b.li(1, 0);       // r1 = sum
  b.li(2, 1);       // r2 = i
  b.li(3, 1000);    // r3 = n
  b.li(4, 0x1000);  // r4 = &result
  b.label("loop");
  b.add(1, 1, 2);
  b.addi(2, 2, 1);
  b.bge(3, 2, "loop");
  b.st(1, 4, 0);
  b.halt();
  const Program program = b.build();

  // 2. Run it on a full-BlackJack core (leading + shuffled trailing thread).
  Core core(program, Mode::kBlackjack);
  while (core.tick()) {
  }

  // 3. What happened?
  const CoreStats& s = core.stats();
  std::cout << "program finished: " << std::boolalpha << core.finished()
            << "\n"
            << "cycles:           " << core.cycle() << "\n"
            << "leading commits:  " << core.leading_commits() << "\n"
            << "trailing commits: " << core.trailing_commits() << "\n"
            << "IPC (leading):    " << s.ipc() << "\n"
            << "instruction pairs checked: " << s.coverage.pairs() << "\n"
            << "hard-error coverage: total "
            << 100.0 * s.coverage.total_coverage() << "%  (frontend "
            << 100.0 * s.coverage.frontend_coverage() << "%, backend "
            << 100.0 * s.coverage.backend_coverage() << "%)\n"
            << "shuffle NOPs inserted: " << s.shuffle_nops
            << ", packet splits: " << s.packet_splits << "\n"
            << "detections (should be 0 on a fault-free machine): "
            << core.detections().size() << "\n";

  // 4. The stores the two threads agreed on were released to memory.
  for (const auto& store : core.released_stores()) {
    std::cout << "released store: mem[0x" << std::hex << store.addr
              << "] = " << std::dec << store.data << "\n";
  }
  return core.finished() && core.detections().empty() ? 0 : 1;
}
