// Fault demo: inject one hard fault — a stuck-at bit in the decoder of
// frontend way 1 — and watch three machines handle the same program:
//   * single-threaded: silently corrupts its output,
//   * SRT: both redundant copies decode on the same faulty lane, so the
//     corruption usually agrees with itself and slips through,
//   * BlackJack: safe-shuffle forces the trailing copy onto a different
//     decoder lane, so the copies disagree and a checker fires.
//
//   $ ./build/examples/fault_demo
#include <iostream>

#include "arch/emulator.h"
#include "fault/fault_model.h"
#include "pipeline/core.h"
#include "workload/microkernels.h"

using namespace bj;

namespace {

void report(const char* label, Core& core, std::uint64_t expected) {
  core.set_oracle_check(false);
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  std::uint64_t result = 0;
  bool stored = false;
  for (const auto& s : core.released_stores()) {
    if (s.addr == 0x1000) {
      result = s.data;
      stored = true;
    }
  }
  std::cout << label << ":\n  finished=" << std::boolalpha
            << outcome.program_finished << " wedged=" << outcome.wedged
            << "\n  result stored: "
            << (stored ? std::to_string(result) : std::string("(none)"))
            << " (fault-free answer: " << expected << ")\n";
  if (outcome.detections.empty()) {
    std::cout << "  detections: none";
    if (stored && result != expected) {
      std::cout << "  <-- SILENT DATA CORRUPTION";
    }
    std::cout << "\n";
  } else {
    const DetectionEvent& d = outcome.detections.front();
    std::cout << "  DETECTED: " << detection_kind_name(d.kind) << " at cycle "
              << d.cycle << " (pc " << d.pc << ")\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  const Program program = kernels::sum_to_n(200);

  // The fault-free answer, from the architectural emulator.
  Emulator oracle(program);
  oracle.run(1 << 20);
  const std::uint64_t expected = oracle.memory().load(0x1000);

  HardFault fault;
  fault.site = FaultSite::kFrontendDecoder;
  fault.frontend_way = 1;
  fault.bit = 16;  // an operand-field bit: corrupts who reads/writes what
  fault.stuck_value = true;
  std::cout << "Injected hard fault: " << fault.describe() << "\n"
            << "Program: sum of 1..200 stored to 0x1000 (expect " << expected
            << ")\n\n";

  {
    FaultInjector injector(fault);
    Core core(program, Mode::kSingle, CoreParams{}, &injector);
    report("single-thread (no redundancy)", core, expected);
  }
  {
    FaultInjector injector(fault);
    Core core(program, Mode::kSrt, CoreParams{}, &injector);
    report("SRT (temporal redundancy only)", core, expected);
  }
  {
    FaultInjector injector(fault);
    Core core(program, Mode::kBlackjack, CoreParams{}, &injector);
    report("BlackJack (spatially diverse redundancy)", core, expected);
  }
  return 0;
}
