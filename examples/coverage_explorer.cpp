// Coverage explorer: sweep one workload knob and watch how BlackJack's
// coverage, interference, and performance trade off. By default sweeps the
// FP fraction (scarce 2-way FP units are the paper's explanation for
// equake's extra interference); pass a different knob on the command line.
//
//   $ ./build/examples/coverage_explorer            # sweep fp fraction
//   $ ./build/examples/coverage_explorer ilp        # sweep dep chains
//   $ ./build/examples/coverage_explorer memory     # sweep working set
#include <iostream>
#include <string>

#include "common/table.h"
#include "harness/driver.h"

using namespace bj;

namespace {

SimResult run(const WorkloadProfile& profile, Mode mode) {
  SimRequest req;
  req.mode = mode;
  req.warmup_commits = 15000;
  req.budget_commits = 40000;
  return run_workload(profile, req);
}

WorkloadProfile base_profile() {
  WorkloadProfile p;
  p.name = "explorer";
  p.fp_fraction = 0.3;
  p.dep_chains = 3;
  p.working_set_bytes = 128 * 1024;
  p.load_fraction = 0.25;
  p.store_fraction = 0.1;
  p.branch_fraction = 0.1;
  p.branch_regularity = 0.85;
  p.stride_bytes = 32;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string knob = argc > 1 ? argv[1] : "fp";

  Table t({"setting", "single IPC", "BJ perf %", "BJ coverage %", "LT %",
           "TT %", "splits/packet"});

  auto measure = [&](const std::string& label, const WorkloadProfile& p) {
    const SimResult single = run(p, Mode::kSingle);
    const SimResult bj = run(p, Mode::kBlackjack);
    t.begin_row();
    t.add(label);
    t.add(single.ipc, 2);
    t.add_percent(static_cast<double>(single.cycles) /
                  static_cast<double>(bj.cycles));
    t.add_percent(bj.coverage_total);
    t.add_percent(bj.lt_interference, 2);
    t.add_percent(bj.tt_interference, 2);
    t.add(bj.packets ? static_cast<double>(bj.packet_splits) /
                           static_cast<double>(bj.packets)
                     : 0.0,
          2);
  };

  if (knob == "fp") {
    std::cout << "Sweeping FP fraction: FP units have only 2 ways each, so "
                 "heavy FP use strains spatial diversity.\n\n";
    for (double fp : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      WorkloadProfile p = base_profile();
      p.name = "fp" + std::to_string(static_cast<int>(fp * 100));
      p.fp_fraction = fp;
      measure("fp=" + std::to_string(fp).substr(0, 4), p);
    }
  } else if (knob == "ilp") {
    std::cout << "Sweeping dependence chains (ILP): wider leading packets "
                 "are harder to shuffle without splits.\n\n";
    for (int dep : {1, 2, 3, 4, 6}) {
      WorkloadProfile p = base_profile();
      p.name = "ilp" + std::to_string(dep);
      p.dep_chains = dep;
      measure("chains=" + std::to_string(dep), p);
    }
  } else if (knob == "memory") {
    std::cout << "Sweeping working set: memory-bound leading threads leave "
                 "more idle issue slots to hide the trailing thread.\n\n";
    for (std::uint64_t kb : {32, 256, 2048, 8192}) {
      WorkloadProfile p = base_profile();
      p.name = "ws" + std::to_string(kb);
      p.working_set_bytes = kb * 1024;
      p.stride_bytes = kb >= 2048 ? 2048 : 32;
      p.warm_prefix_bytes = kb >= 2048 ? 0 : ~0ull;
      measure(std::to_string(kb) + " KiB", p);
    }
  } else {
    std::cerr << "unknown knob: " << knob << " (try fp | ilp | memory)\n";
    return 1;
  }

  std::cout << t.to_text();
  return 0;
}
