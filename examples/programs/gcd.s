; Euclid's algorithm: gcd(1071, 462) -> 21, stored to 0x1000.
; Run with:  bjsim --program examples/programs/gcd.s --mode blackjack \
;                  --instructions 1000 --warmup 0
    li r1, 1071
    li r2, 462
loop:
    beq r2, r0, done
    rem r3, r1, r2      ; r3 = r1 mod r2
    mov r1, r2
    mov r2, r3
    jmp loop
done:
    li r4, 0x1000
    st r1, [r4]
    halt
