; Collatz trajectory length of 27 (expected 111), stored to 0x1000.
; Exercises data-dependent branches (hard to predict) and the multiplier.
    li r1, 27           ; n
    li r2, 0            ; steps
loop:
    li r3, 1
    beq r1, r3, done
    andi r4, r1, 1
    bne r4, r0, odd
    srli r1, r1, 1      ; n /= 2
    jmp next
odd:
    li r5, 3
    mul r1, r1, r5      ; n = 3n + 1
    addi r1, r1, 1
next:
    addi r2, r2, 1
    jmp loop
done:
    li r6, 0x1000
    st r2, [r6]
    halt
