// bjsim — command-line driver for the BlackJack simulator.
//
// Run a named benchmark kernel, a built-in microkernel, or an assembly file
// on any core mode, optionally injecting a hard or transient fault, and
// print a full statistics report.
//
// Examples:
//   bjsim --workload gcc --mode blackjack --instructions 50000
//   bjsim --program my.s --mode srt --trace trace.txt
//   bjsim --workload gzip --mode blackjack --fault backend:fu=int-alu,way=2,bit=3
//   bjsim --kernel fib --mode blackjack --fault decoder:way=1,bit=16
//   bjsim --workload gcc --mode blackjack --campaign 200 --jobs 8
//         --json runs.jsonl
//   bjsim --list
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/bjsim_cli.h"
#include "common/env.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/metrics_http.h"
#include "common/table.h"
#include "common/trace.h"
#include "harness/autopsy.h"
#include "harness/campaign.h"
#include "harness/campaign_store.h"
#include "harness/diagnosis.h"
#include "isa/assembler.h"
#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

using namespace bj;

namespace {

int usage() {
  // The text (and the option inventory it must cover) lives in
  // common/bjsim_cli.cc so test_bjsim_cli can hold it against the parser.
  std::cout << bjsim_usage_text();
  return 2;
}

std::map<std::string, std::string> parse_kv(const std::string& spec) {
  std::map<std::string, std::string> out;
  for (const std::string& item : split(spec, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    out[item.substr(0, eq)] = item.substr(eq + 1);
  }
  return out;
}

FuClass parse_fu(const std::string& name) {
  for (int c = 0; c < kNumFuClasses; ++c) {
    if (name == fu_class_name(static_cast<FuClass>(c))) {
      return static_cast<FuClass>(c);
    }
  }
  throw std::runtime_error("unknown fu class: " + name +
                           " (try int-alu/int-mul/fp-alu/fp-mul/mem-port)");
}

FaultInjector parse_fault(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const auto kv = parse_kv(colon == std::string::npos ? "" : spec.substr(colon + 1));
  auto kv_int = [&](const std::string& key, long long fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoll(it->second, nullptr, 0);
  };
  if (kind == "transient") {
    TransientFault t;
    t.trigger_execution = static_cast<std::uint64_t>(kv_int("at", 30000));
    t.bit = static_cast<int>(kv_int("bit", 4));
    if (kv.count("site")) {
      if (!parse_fault_site(kv.at("site"), &t.site) ||
          (t.site != FaultSite::kBackendResult &&
           !fault_site_is_storage(t.site))) {
        throw std::runtime_error(
            "transient site must be backend-result or a storage array "
            "(iq-payload/regfile-entry/lvq-slot/dtq-slot): " + kv.at("site"));
      }
    }
    return FaultInjector(t);
  }
  HardFault f;
  f.bit = static_cast<int>(kv_int("bit", 3));
  f.stuck_value = kv_int("stuck", 1) != 0;
  if (kind == "decoder") {
    f.site = FaultSite::kFrontendDecoder;
    f.frontend_way = static_cast<int>(kv_int("way", 0));
  } else if (kind == "backend") {
    f.site = FaultSite::kBackendResult;
    f.fu = parse_fu(kv.count("fu") ? kv.at("fu") : "int-alu");
    f.backend_way = static_cast<int>(kv_int("way", 0));
  } else if (kind == "payload") {
    f.site = FaultSite::kIqPayload;
    f.iq_entry = static_cast<int>(kv_int("entry", 0));
  } else if (kind == "regfile") {
    f.site = FaultSite::kRegfileEntry;
    f.storage_index = static_cast<int>(kv_int("row", 0));
  } else if (kind == "lvq") {
    f.site = FaultSite::kLvqSlot;
    f.storage_index = static_cast<int>(kv_int("slot", 0));
  } else if (kind == "dtq") {
    f.site = FaultSite::kDtqSlot;
    f.storage_index = static_cast<int>(kv_int("slot", 0));
  } else {
    throw std::runtime_error("unknown fault kind: " + kind);
  }
  return FaultInjector(f);
}

// --ecc SPEC: a bare codec name protects every storage array; "array=codec"
// pairs configure arrays individually.
void apply_ecc(CoreParams& params, const std::string& spec) {
  auto parse = [](const std::string& name) {
    EccCodec codec = EccCodec::kNone;
    if (!parse_ecc_codec(name, &codec)) {
      throw std::runtime_error("unknown ECC codec: " + name +
                               " (try none, hamming, or hsiao)");
    }
    return codec;
  };
  if (spec.find('=') == std::string::npos) {
    const EccCodec codec = parse(spec);
    params.payload_ecc = codec;
    params.regfile_ecc = codec;
    params.lvq_ecc = codec;
    params.dtq_ecc = codec;
    return;
  }
  for (const auto& [array, name] : parse_kv(spec)) {
    const EccCodec codec = parse(name);
    if (array == "payload") {
      params.payload_ecc = codec;
    } else if (array == "regfile") {
      params.regfile_ecc = codec;
    } else if (array == "lvq") {
      params.lvq_ecc = codec;
    } else if (array == "dtq") {
      params.dtq_ecc = codec;
    } else {
      throw std::runtime_error("unknown ECC array: " + array +
                               " (try payload/regfile/lvq/dtq)");
    }
  }
}

std::vector<FaultSite> parse_fault_sites(const std::string& list) {
  std::vector<FaultSite> sites;
  for (const std::string& name : split(list, ',')) {
    FaultSite site = FaultSite::kBackendResult;
    if (!parse_fault_site(name, &site)) {
      throw std::runtime_error(
          "unknown fault site: " + name +
          " (try frontend-decoder/backend-result/iq-payload/regfile-entry/"
          "lvq-slot/dtq-slot)");
    }
    sites.push_back(site);
  }
  return sites;
}

Program select_program(const Flags& flags) {
  if (flags.has("program")) {
    const std::string path = flags.get("program");
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return assemble(buffer.str(), path);
  }
  if (flags.has("kernel")) {
    const std::string k = flags.get("kernel");
    if (k == "sum") return kernels::sum_to_n(100000);
    if (k == "fib") return kernels::fibonacci(80);
    if (k == "matmul") return kernels::matmul(12);
    if (k == "chase") return kernels::pointer_chase(4096, 200000);
    if (k == "memcopy") return kernels::memcopy(20000);
    if (k == "branchy") return kernels::branchy(50000);
    if (k == "fpmix") return kernels::fp_mix(20000);
    if (k == "quicksort") return kernels::quicksort(2048);
    throw std::runtime_error("unknown kernel: " + k);
  }
  return generate_workload(profile_by_name(flags.get("workload", "gcc")));
}

// Opens --metrics-out eagerly (so a bad path fails before a long run) and
// returns a writer honouring --metrics-format.
std::function<void(const MetricsRegistry&)> metrics_writer(const Flags& flags) {
  if (!flags.has("metrics-out")) return {};
  auto out = std::make_shared<std::ofstream>(flags.get("metrics-out"));
  if (!*out) throw std::runtime_error("cannot open metrics output file");
  const std::string format = flags.get("metrics-format", "json");
  if (format != "json" && format != "prometheus") {
    throw std::runtime_error("unknown metrics format: " + format +
                             " (try json or prometheus)");
  }
  return [out, format](const MetricsRegistry& registry) {
    if (format == "json") {
      registry.write_json(*out);
    } else {
      registry.write_prometheus(*out);
    }
  };
}

Mode parse_mode(const std::string& name) {
  if (name == "single") return Mode::kSingle;
  if (name == "srt") return Mode::kSrt;
  if (name == "blackjack-ns") return Mode::kBlackjackNs;
  if (name == "blackjack") return Mode::kBlackjack;
  throw std::runtime_error("unknown mode: " + name);
}

void report(const Core& core, std::uint64_t measured_cycles, bool csv) {
  const CoreStats& s = core.stats();
  Table t({"metric", "value"});
  auto row = [&](const std::string& k, const std::string& v) {
    t.begin_row();
    t.add(k);
    t.add(v);
  };
  auto row_d = [&](const std::string& k, double v, int prec = 3) {
    t.begin_row();
    t.add(k);
    t.add(v, prec);
  };
  row("mode", mode_name(core.mode()));
  row("cycles (measured)", std::to_string(measured_cycles));
  row("leading commits", std::to_string(s.leading_commits));
  row("trailing commits", std::to_string(s.trailing_commits));
  row_d("IPC (leading)", s.ipc());
  row_d("branch mispredicts / 1k instr",
        s.leading_commits ? 1000.0 * static_cast<double>(s.branch_mispredicts) /
                                static_cast<double>(s.leading_commits)
                          : 0.0,
        2);
  if (mode_is_redundant(core.mode())) {
    row_d("coverage: total %", 100.0 * s.coverage.total_coverage(), 1);
    row_d("coverage: frontend %", 100.0 * s.coverage.frontend_coverage(), 1);
    row_d("coverage: backend %", 100.0 * s.coverage.backend_coverage(), 1);
    row("instruction pairs", std::to_string(s.coverage.pairs()));
    row_d("burstiness %", 100.0 * s.burstiness(), 1);
    row_d("LT interference %", 100.0 * s.lt_interference_fraction(), 2);
    row_d("TT interference %", 100.0 * s.tt_interference_fraction(), 2);
  }
  if (mode_uses_dtq(core.mode())) {
    row("packets shuffled", std::to_string(s.packets_shuffled));
    row("packet splits", std::to_string(s.packet_splits));
    row("shuffle NOPs", std::to_string(s.shuffle_nops));
    row("packets combined", std::to_string(s.packets_combined));
    row("shuffle cache hits", std::to_string(s.shuffle_cache_hits));
    row("shuffle cache misses", std::to_string(s.shuffle_cache_misses));
    row("shuffle cache warm hits", std::to_string(s.shuffle_cache_warm_hits));
  }
  row("pool high water", std::to_string(s.pool_high_water));
  row("L1D hits", std::to_string(core.memory_hierarchy().l1d().hits()));
  row("L1D misses", std::to_string(core.memory_hierarchy().l1d().misses()));
  row("L2 misses", std::to_string(core.memory_hierarchy().l2().misses()));
  row("detections", std::to_string(core.detections().size()));
  // ECC activity only appears when a codec actually fired — the table stays
  // byte-stable for every unprotected (or clean) run.
  const std::uint64_t ecc_corrected =
      s.ecc_payload_corrected + s.ecc_regfile_corrected + s.ecc_lvq_corrected +
      s.ecc_dtq_corrected;
  const std::uint64_t ecc_detected =
      s.ecc_payload_detected + s.ecc_regfile_detected + s.ecc_lvq_detected +
      s.ecc_dtq_detected;
  if (ecc_corrected > 0) row("ECC corrected", std::to_string(ecc_corrected));
  if (ecc_detected > 0) {
    row("ECC detected (uncorrectable)", std::to_string(ecc_detected));
  }
  std::cout << (csv ? t.to_csv() : t.to_text());

  for (const DetectionEvent& d : core.detections()) {
    std::cout << "DETECTED: " << detection_kind_name(d.kind) << " at cycle "
              << d.cycle << " (pc " << d.pc << ", seq " << d.seq << ")\n";
  }
  if (core.oracle_violated()) {
    std::cout << "ORACLE VIOLATION: " << core.oracle_violation_detail()
              << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help") || flags.has("h")) return usage();

  if (flags.has("list")) {
    std::cout << "workloads:";
    for (const WorkloadProfile& p : spec2000_profiles()) {
      std::cout << ' ' << p.name;
    }
    std::cout << "\nkernels: sum fib matmul chase memcopy branchy fpmix quicksort\n";
    return 0;
  }

  try {
    // Store-maintenance commands that need no program or simulation.
    if (flags.has("merge")) {
      const std::string out_path = flags.get("merge");
      const std::vector<std::string>& inputs = flags.positional();
      if (out_path.empty() || inputs.empty()) {
        throw std::runtime_error(
            "--merge OUT needs completed shard JSONL files as positional "
            "arguments (list them before --merge)");
      }
      const ShardMergeResult merged = merge_campaign_shards(inputs);
      if (!merged.ok) throw std::runtime_error("merge failed: " + merged.error);
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot open " + out_path);
      out << merged.jsonl;
      std::cout << "merged " << inputs.size() << " shards (" << merged.runs
                << " runs) into " << out_path << '\n';
      for (const auto& [outcome, n] : merged.totals) {
        std::cout << "  " << fault_outcome_name(outcome) << ": " << n << '\n';
      }
      return 0;
    }
    if (flags.has("store-verify")) {
      const bool ok = fsck_campaign_store(flags.get("store-verify"), std::cout);
      std::cout << (ok ? "store OK\n" : "store CORRUPT\n");
      return ok ? 0 : 1;
    }

    const Program program = select_program(flags);
    const Mode mode = parse_mode(flags.get("mode", "blackjack"));

    CoreParams params;
    params.slack = static_cast<int>(flags.get_int("slack", params.slack));
    if (flags.get_bool("combine-packets")) params.combine_packets = true;
    if (flags.get_bool("no-serial-dispatch")) {
      params.packet_serial_dispatch = false;
    }
    if (flags.get_bool("multi-packet-fetch")) {
      params.one_packet_per_cycle = false;
    }
    if (flags.has("ecc")) apply_ecc(params, flags.get("ecc"));

    FaultInjector injector;
    if (flags.has("fault")) injector = parse_fault(flags.get("fault"));

    if (flags.has("campaign")) {
      CampaignConfig config;
      config.mode = mode;
      config.params = params;
      config.num_faults =
          static_cast<int>(flags.get_int("campaign", 100));
      config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
      config.budget_commits =
          static_cast<std::uint64_t>(flags.get_int("instructions", 12000));
      config.soft_errors = flags.get_bool("soft-errors");
      // Soft errors imply the oracle (see bjsim_campaign_oracle); the
      // implied setting feeds the config digest and JSONL header like any
      // explicit one, so stored campaigns stay honest about what ran.
      config.oracle_check = bjsim_campaign_oracle(flags.get_bool("oracle"),
                                                  config.soft_errors,
                                                  flags.get_bool("no-oracle"));
      config.exhaustive = flags.get_bool("exhaustive");
      config.test_count = static_cast<int>(flags.get_int("test-count", 0));
      if (flags.has("fault-site")) {
        config.sites = parse_fault_sites(flags.get("fault-site"));
      }

      CampaignServiceOptions options;
      options.jobs = static_cast<int>(flags.get_int("jobs", 0));
      options.store_root = flags.get("store", "");
      options.shard = parse_shard_spec(flags.get("shard", "1/1"));
      options.checkpoint_every =
          static_cast<int>(flags.get_int("checkpoint-every", 0));
      options.autopsy = flags.has("autopsy");
      if (options.autopsy) {
        // A bare `--autopsy` parses as the value "true": both spellings mean
        // the default select (escapes).
        std::string select = flags.get("autopsy", "escapes");
        if (select.empty() || select == "true") select = "escapes";
        if (!parse_autopsy_select(select, &options.autopsy_select)) {
          throw std::runtime_error("unknown --autopsy select: " + select +
                                   " (try escapes, detected, or all)");
        }
      }
      std::ofstream jsonl;
      if (flags.has("json")) {
        jsonl.open(flags.get("json"));
        if (!jsonl) throw std::runtime_error("cannot open JSONL output file");
        options.jsonl = &jsonl;
      }
      options.progress = stderr_campaign_progress(program.name);
      CampaignTraceLog trace_log;
      std::ofstream trace_file;
      if (flags.has("trace")) {
        trace_file.open(flags.get("trace"));
        if (!trace_file) throw std::runtime_error("cannot open trace file");
        options.trace = &trace_log;
      }
      const auto write_metrics = metrics_writer(flags);

      // Live Prometheus tap: the progress callback keeps the latest snapshot
      // under a lock and each scrape serializes it on demand.
      std::mutex progress_mu;
      CampaignProgress latest;
      // Filled after the autopsy pass completes; scrapes append it to the
      // live progress exposition.
      std::string autopsy_prom;
      std::unique_ptr<MetricsHttpServer> metrics_server;
      if (flags.has("metrics-port")) {
        const auto chained = options.progress;
        options.progress = [&progress_mu, &latest,
                            chained](const CampaignProgress& p) {
          {
            std::lock_guard<std::mutex> lock(progress_mu);
            latest = p;
          }
          if (chained) chained(p);
        };
        metrics_server = std::make_unique<MetricsHttpServer>(
            static_cast<int>(flags.get_int("metrics-port", 0)),
            [&progress_mu, &latest, &autopsy_prom] {
              CampaignProgress p;
              std::string autopsy_tail;
              {
                std::lock_guard<std::mutex> lock(progress_mu);
                p = latest;
                autopsy_tail = autopsy_prom;
              }
              MetricsRegistry registry;
              registry.counter("campaign.progress.completed",
                               static_cast<std::uint64_t>(p.completed));
              registry.counter("campaign.progress.finished",
                               static_cast<std::uint64_t>(p.finished));
              registry.counter("campaign.progress.total",
                               static_cast<std::uint64_t>(p.total));
              registry.gauge("campaign.progress.elapsed_seconds",
                             p.elapsed_seconds);
              registry.gauge("campaign.progress.eta_seconds", p.eta_seconds);
              for (const auto& [outcome, n] : p.histogram) {
                registry.counter(std::string("campaign.outcome.") +
                                     fault_outcome_name(outcome),
                                 static_cast<std::uint64_t>(n));
              }
              std::ostringstream os;
              registry.write_prometheus(os);
              return os.str() + autopsy_tail;
            });
        if (!metrics_server->ok()) {
          throw std::runtime_error("cannot bind --metrics-port");
        }
        std::cerr << "metrics: http://127.0.0.1:" << metrics_server->port()
                  << "/metrics\n";
      }

      const CampaignServiceReport service_report =
          run_campaign_service(program, config, options);
      const CampaignResult& result = service_report.result;
      const CampaignStats& stats = service_report.stats;
      if (options.trace != nullptr) trace_log.write_chrome(trace_file);
      if (options.autopsy && !service_report.autopsy_adopted &&
          metrics_server != nullptr) {
        MetricsRegistry registry;
        export_autopsy_metrics(registry, config, service_report.autopsy);
        std::ostringstream os;
        registry.write_prometheus(os);
        std::lock_guard<std::mutex> lock(progress_mu);
        autopsy_prom = os.str();
      }
      if (write_metrics) {
        MetricsRegistry registry;
        export_campaign_metrics(registry, result, &stats);
        if (options.autopsy && !service_report.autopsy_adopted) {
          export_autopsy_metrics(registry, config, service_report.autopsy);
        }
        write_metrics(registry);
      }

      Table t({"outcome", "runs"});
      const auto totals = result.totals();
      for (FaultOutcome outcome :
           {FaultOutcome::kDetected, FaultOutcome::kDetectedLate,
            FaultOutcome::kWedged, FaultOutcome::kSdc,
            FaultOutcome::kOracleDivergence, FaultOutcome::kBenign}) {
        t.begin_row();
        t.add(fault_outcome_name(outcome));
        const auto it = totals.find(outcome);
        t.add_int(it == totals.end() ? 0 : it->second);
      }
      std::cout << "campaign: " << result.runs.size()
                << (config.soft_errors ? " transient" : " stuck-at")
                << (config.exhaustive ? " faults (exhaustive) on "
                                      : " faults on ")
                << program.name << " / " << mode_name(mode) << ", "
                << config.budget_commits << " commits per run\n"
                << (flags.get_bool("csv") ? t.to_csv() : t.to_text());
      std::cout << "detection rate (activated): "
                << 100.0 * result.detection_rate_of_activated() << "%\n"
                << "sdc rate (activated): "
                << 100.0 * result.sdc_rate_of_activated() << "%\n"
                << "wall clock: " << stats.wall_seconds << " s with "
                << stats.jobs << " jobs (" << stats.runs_per_second
                << " runs/s, est. serial " << stats.serial_estimate_seconds
                << " s, speedup " << stats.speedup() << "x)\n";
      if (!service_report.store_dir.empty()) {
        std::cout << "store: " << service_report.store_dir << " ("
                  << stats.resumed_runs << " resumed, " << stats.executed_runs
                  << " executed, golden warm-start "
                  << stats.golden_preloaded_stores << " stores / "
                  << stats.golden_steps << " new emulator steps";
        if (config.mode == Mode::kBlackjack) {
          std::cout << ", shuffle warm-start "
                    << stats.shuffle_preloaded_entries << " entries";
        }
        std::cout << (service_report.complete_on_entry
                          ? ", complete on entry)\n"
                          : ")\n");
        if (service_report.quarantined > 0) {
          std::cerr << "warning: quarantined " << service_report.quarantined
                    << " corrupt store artifact(s) (*.corrupt)\n";
        }
      }
      if (options.autopsy) {
        std::cout << "autopsy ("
                  << autopsy_select_name(options.autopsy_select) << "): "
                  << service_report.autopsy_records << " record(s)";
        if (!service_report.autopsy_path.empty()) {
          std::cout << (service_report.autopsy_adopted ? ", adopted from "
                                                       : ", written to ")
                    << service_report.autopsy_path;
        }
        std::cout << "\n";
      }
      return 0;
    }

    if (flags.get_bool("diagnose")) {
      if (!injector.fault().has_value()) {
        throw std::runtime_error("--diagnose needs a hard --fault to localize");
      }
      const auto budget = static_cast<std::uint64_t>(
          flags.get_int("instructions", 12000));
      std::cout << "diagnosing: " << injector.fault()->describe() << "\n";
      const DiagnosisResult r = diagnose_backend_fault(
          program, mode, params, *injector.fault(), budget,
          static_cast<int>(flags.get_int("jobs", 0)),
          flags.get_bool("oracle"));
      if (!r.baseline_detected) {
        std::cout << "fault never detected on this workload — nothing to "
                     "localize\n";
        return 0;
      }
      for (const DiagnosisTrial& trial : r.trials) {
        std::cout << "  disable " << fu_class_name(trial.fu) << " way "
                  << trial.way << ": "
                  << (trial.detected ? "still faulty" : "CLEAN") << '\n';
      }
      if (r.suspect.has_value()) {
        std::cout << "SUSPECT: " << fu_class_name(r.suspect->first) << " way "
                  << r.suspect->second << "\ndegraded-mode performance: "
                  << 100.0 * r.degraded_performance << "% of healthy\n";
      } else {
        std::cout << "no unique backend suspect (frontend fault, or "
                     "ambiguous within this budget)\n";
      }
      return 0;
    }

    if (flags.has("autopsy")) {
      // Single-run forensics: deterministically re-run this fault against
      // the lockstep oracle and emit one canonical autopsy record.
      if (!injector.fault().has_value()) {
        throw std::runtime_error(
            "single-run --autopsy needs a hard --fault; transient faults are "
            "autopsied through --campaign N --soft-errors --autopsy");
      }
      CampaignConfig config;
      config.mode = mode;
      config.params = params;
      config.budget_commits = static_cast<std::uint64_t>(
          flags.get_int("instructions", 12000));
      config.oracle_check = flags.get_bool("oracle");
      const AutopsyRecord rec =
          autopsy_single_run(program, config, injector, *injector.fault());
      std::cout << "autopsy: " << injector.fault()->describe() << " -> "
                << fault_outcome_name(rec.outcome) << "\n";
      if (rec.diverged) {
        std::cout << "  first divergence: " << divergence_kind_name(rec.first.kind)
                  << " at seq " << rec.first.seq << ", cycle " << rec.first.cycle
                  << ", pc " << rec.first.pc << " (expected " << rec.first.expected
                  << ", actual " << rec.first.actual << "); "
                  << rec.divergent_commits << " divergent commit(s)\n";
      }
      if (rec.corrupt_store_released) {
        std::cout << "  first corrupt store: addr "
                  << rec.first_corrupt_store_addr << " data "
                  << rec.first_corrupt_store_data << " released at cycle "
                  << rec.first_corrupt_store_cycle << "\n";
      }
      if (rec.detected) {
        std::cout << "  detection: " << detection_kind_name(rec.detection_kind)
                  << " at cycle " << rec.detection_cycle << " (pc "
                  << rec.detection_pc << ", seq " << rec.detection_seq
                  << "), latency " << rec.detection_latency << "\n";
      }
      std::cout << canonical_autopsy_record(program.name, config, rec);
      return 0;
    }

    Core core(program, mode, params, &injector);
    if (flags.has("fault")) core.set_oracle_check(false);

    StageProfiler profiler;
    std::ofstream profile_json;
    if (flags.has("profile-json")) {
      profile_json.open(flags.get("profile-json"));
      if (!profile_json) {
        throw std::runtime_error("cannot open profile JSON output file");
      }
    }
    if (flags.get_bool("profile") || profile_json.is_open()) {
      core.set_profiler(&profiler);
    }
    const auto write_metrics = metrics_writer(flags);

    const std::string trace_format = flags.get("trace-format", "text");
    PipelineTracer tracer(
        std::size_t{1} << 18,
        static_cast<std::uint64_t>(flags.get_int("trace-cycles", 0)));
    std::ofstream trace_file;
    if (flags.has("trace")) {
      trace_file.open(flags.get("trace"));
      if (!trace_file) {
        throw std::runtime_error("cannot open trace file");
      }
      if (trace_format == "text") {
        core.set_trace(&trace_file);
      } else if (trace_format == "konata" || trace_format == "chrome") {
        core.set_tracer(&tracer);
      } else {
        throw std::runtime_error("unknown trace format: " + trace_format +
                                 " (try text, konata, or chrome)");
      }
    }

    // Flight recorder: a last-N-cycles ring that auto-dumps on a detection,
    // an oracle divergence, or a BJ_CHECK abort. Mutually exclusive with a
    // konata/chrome --trace (both own the pipeline tracer hook).
    std::unique_ptr<FlightRecorder> flight;
    if (flags.has("flight-recorder")) {
      if (trace_file.is_open() && trace_format != "text") {
        throw std::runtime_error(
            "--flight-recorder and --trace-format konata/chrome both need "
            "the pipeline tracer; pick one");
      }
      flight = std::make_unique<FlightRecorder>(
          static_cast<std::uint64_t>(flags.get_int("flight-recorder", 4096)),
          "flight",
          trace_format == "chrome" ? FlightRecorder::Format::kChrome
                                   : FlightRecorder::Format::kKonata);
      core.set_flight_recorder(flight.get());
      FlightRecorder::arm_on_check_abort(flight.get());
    }

    const auto warmup = static_cast<std::uint64_t>(
        flags.get_int("warmup", sim_warmup_budget()));
    const auto budget = static_cast<std::uint64_t>(
        flags.get_int("instructions", sim_instruction_budget()));
    for (const std::string& flag : flags.unused()) {
      std::cerr << "warning: unused flag --" << flag << '\n';
    }
    const std::uint64_t max_cycles = (warmup + budget) * 64 + 400000;

    core.run(warmup, max_cycles);
    core.reset_stats();
    const std::uint64_t before = core.cycle();
    core.run(budget, max_cycles);

    if (flight != nullptr) {
      FlightRecorder::arm_on_check_abort(nullptr);
      if (flight->dumps() > 0) {
        std::cout << "flight recorder: " << flight->dumps()
                  << " dump(s) written (prefix " << flight->prefix()
                  << "-)\n";
      }
    }
    if (trace_file.is_open() && trace_format != "text") {
      if (trace_format == "konata") {
        tracer.write_konata(trace_file);
      } else {
        tracer.write_chrome(trace_file);
      }
    }
    report(core, core.cycle() - before, flags.get_bool("csv"));
    if (flags.get_bool("profile")) profiler.print(std::cout);
    if (profile_json.is_open()) profile_json << profiler.report_json();
    if (write_metrics) {
      MetricsRegistry registry;
      core.export_metrics(registry);
      if (flags.get_bool("profile") || profile_json.is_open()) {
        profiler.export_metrics(registry);
      }
      write_metrics(registry);
    }
    if (flags.get_bool("dump-state")) core.dump_state(std::cout);
    return core.oracle_violated() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return usage();
  }
}
