// Machine-relative simulator speed gate.
//
// The old gate was an absolute items/s floor (>=292.5k) calibrated on one
// box; on a slower container even the unmodified seed failed it, so it
// gated the machine, not the code. This gate measures two throughputs in
// the same process on the same machine:
//   * the BlackJack-mode cycle-level core (the thing perf PRs optimize), and
//   * the functional ISA emulator (a stable, layout-independent reference),
// and gates on their RATIO against a baseline ratio pinned in the repo.
// Host speed multiplies both measurements, so it cancels: a genuine
// simulator regression lowers the ratio on every machine, while a slow or
// noisy host does not.
//
// Usage:
//   speed_gate --baseline <file>            check against the pinned ratio
//   speed_gate --baseline <file> --update   re-measure and rewrite the pin
//   speed_gate --threshold 0.55             override the pass fraction
//
// The threshold is deliberately loose (default 0.55 x baseline): the gate
// exists to catch order-of-magnitude regressions deterministically, not to
// resolve single-digit percent changes on a noisy 1-CPU CI box (observed
// run-to-run cv ~10%).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/emulator.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Best-of-N wall-clock throughput: the minimum-time repetition is the one
// least disturbed by other tenants of the box.
double blackjack_items_per_sec(const bj::Program& program, int reps) {
  constexpr std::uint64_t kCommits = 10000;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    bj::Core core(program, bj::Mode::kBlackjack);
    core.set_oracle_check(false);
    const auto start = Clock::now();
    core.run(kCommits, 4000000);
    const double rate = static_cast<double>(kCommits) / seconds_since(start);
    if (rate > best) best = rate;
  }
  return best;
}

double emulator_items_per_sec(const bj::Program& program, int reps) {
  constexpr std::uint64_t kRetired = 100000;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    bj::Emulator emu(program);
    const auto start = Clock::now();
    emu.run(kRetired);
    const double rate = static_cast<double>(kRetired) / seconds_since(start);
    if (rate > best) best = rate;
  }
  return best;
}

// Minimal flat-JSON number lookup ("key":value) — the baseline file is
// written by this tool, so no general parser is needed.
bool find_number(const std::string& text, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  return std::sscanf(text.c_str() + at + needle.size(), "%lf", out) == 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  bool update = false;
  double threshold = 0.55;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: speed_gate --baseline <file> [--update] "
                   "[--threshold <fraction>]\n");
      return 2;
    }
  }
  if (baseline_path.empty()) {
    std::fprintf(stderr, "speed_gate: --baseline is required\n");
    return 2;
  }

  const bj::Program program =
      bj::generate_workload(bj::profile_by_name("gcc"));
  // Warm-up rep (first-touch page faults, shuffle-cache fill) is discarded
  // by best-of: it can only lose to the later repetitions.
  const double sim = blackjack_items_per_sec(program, 4);
  const double emu = emulator_items_per_sec(program, 4);
  const double ratio = sim / emu;
  std::printf("speed_gate: blackjack %.1fk items/s, emulator %.1fk items/s, "
              "ratio %.5f\n",
              sim / 1e3, emu / 1e3, ratio);

  if (update) {
    std::ofstream out(baseline_path);
    out << "{\"blackjack_items_per_sec\":" << std::fixed << sim
        << ",\"emulator_items_per_sec\":" << emu << ",\"ratio\":" << ratio
        << "}\n";
    if (!out) {
      std::fprintf(stderr, "speed_gate: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("speed_gate: baseline updated: %s\n", baseline_path.c_str());
    return 0;
  }

  std::ifstream in(baseline_path);
  std::stringstream buf;
  buf << in.rdbuf();
  double baseline_ratio = 0.0;
  if (!in || !find_number(buf.str(), "ratio", &baseline_ratio) ||
      baseline_ratio <= 0.0) {
    std::fprintf(stderr,
                 "speed_gate: no usable baseline at %s (run with --update)\n",
                 baseline_path.c_str());
    return 2;
  }

  const double floor = baseline_ratio * threshold;
  if (ratio < floor) {
    std::fprintf(stderr,
                 "speed_gate: FAIL ratio %.5f < %.5f (baseline %.5f x "
                 "threshold %.2f) — simulator slowed down relative to the "
                 "emulator reference\n",
                 ratio, floor, baseline_ratio, threshold);
    return 1;
  }
  std::printf("speed_gate: PASS ratio %.5f >= %.5f (baseline %.5f x "
              "threshold %.2f)\n",
              ratio, floor, baseline_ratio, threshold);
  return 0;
}
