// trace_check — validating parser for bjsim's trace exporters.
//
// Konata/Kanata files are checked line-by-line against the subset of the
// v0004 format bjsim emits: header first, cycle records that only advance,
// and a well-formed I → (L/S)* → R lifecycle for every instruction lane.
// Chrome trace-event files are parsed with a small strict JSON parser and
// checked for the trace-event envelope (schema_version, traceEvents, and
// per-event ph/pid/tid/ts/dur shape).
//
//   trace_check --format=konata FILE
//   trace_check --format=chrome FILE
//   trace_check --format=jsonl FILE
//   trace_check --selftest
//
// --format=jsonl validates a campaign JSONL file (streamed or canonical):
// the header must carry this build's schema_version — a mismatch is a
// loud failure, never a silent skip — and every record must parse with a
// known outcome.
//
// --selftest round-trips both exporters in-process: a traced BlackJack
// simulation through write_konata/write_chrome, and a traced fault-injection
// campaign through CampaignTraceLog::write_chrome, all validated with the
// same parsers used on files, plus the campaign JSONL validator against the
// streamed campaign output and schema-tampered copies of it. This is what
// the tier2_trace ctest runs.
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/trace.h"
#include "harness/campaign.h"
#include "harness/campaign_store.h"
#include "harness/driver.h"
#include "workload/profile.h"

using namespace bj;

namespace {

// ---------------------------------------------------------------------------
// Konata / Kanata v0004
// ---------------------------------------------------------------------------

struct KonataReport {
  std::vector<std::string> errors;
  std::size_t instructions = 0;
  std::size_t retired = 0;
  std::size_t flushed = 0;
  std::size_t cycle_advances = 0;
};

void konata_error(KonataReport& rep, std::size_t line_no,
                  const std::string& what) {
  if (rep.errors.size() < 20) {
    rep.errors.push_back("line " + std::to_string(line_no) + ": " + what);
  }
}

KonataReport check_konata(std::istream& in) {
  KonataReport rep;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_initial_cycle = false;
  bool saw_any_event = false;
  std::set<std::string> open;  // lanes with I but no R yet

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "Kanata\t0004") {
        konata_error(rep, line_no, "expected 'Kanata\\t0004' header");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> f = split(line, '\t');
    const std::string& cmd = f[0];
    auto want_fields = [&](std::size_t n) {
      if (f.size() < n) {
        konata_error(rep, line_no,
                     cmd + " record needs " + std::to_string(n) + " fields");
        return false;
      }
      return true;
    };
    auto is_number = [](const std::string& s) {
      if (s.empty()) return false;
      std::size_t i = s[0] == '-' ? 1 : 0;
      if (i == s.size()) return false;
      for (; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
      }
      return true;
    };
    if (cmd == "C=") {
      if (saw_initial_cycle || saw_any_event) {
        konata_error(rep, line_no, "C= must appear once, before any event");
      }
      if (want_fields(2) && !is_number(f[1])) {
        konata_error(rep, line_no, "C= cycle is not a number");
      }
      saw_initial_cycle = true;
      continue;
    }
    if (cmd == "C") {
      if (want_fields(2)) {
        if (!is_number(f[1]) || std::stoll(f[1]) < 1) {
          konata_error(rep, line_no, "C delta must be a positive number");
        }
      }
      ++rep.cycle_advances;
      continue;
    }
    saw_any_event = true;
    if (cmd == "I") {
      if (!want_fields(4)) continue;
      if (!open.insert(f[1]).second) {
        konata_error(rep, line_no, "instruction " + f[1] + " already open");
      }
      if (!is_number(f[2]) || !is_number(f[3])) {
        konata_error(rep, line_no, "I insn/thread ids must be numbers");
      }
      ++rep.instructions;
    } else if (cmd == "L") {
      if (!want_fields(3)) continue;
      if (open.find(f[1]) == open.end()) {
        konata_error(rep, line_no, "L for unopened instruction " + f[1]);
      }
    } else if (cmd == "S" || cmd == "E") {
      if (!want_fields(4)) continue;
      if (open.find(f[1]) == open.end()) {
        konata_error(rep, line_no,
                     cmd + " for unopened instruction " + f[1]);
      }
      if (f[3].empty()) konata_error(rep, line_no, "empty stage name");
    } else if (cmd == "R") {
      if (!want_fields(4)) continue;
      if (open.erase(f[1]) == 0) {
        konata_error(rep, line_no, "R for unopened instruction " + f[1]);
      }
      if (f[3] == "0") {
        ++rep.retired;
      } else if (f[3] == "1") {
        ++rep.flushed;
      } else {
        konata_error(rep, line_no, "R type must be 0 (retire) or 1 (flush)");
      }
    } else if (cmd == "W") {
      if (!want_fields(4)) continue;  // dependency edges: accepted, unchecked
    } else {
      konata_error(rep, line_no, "unknown record '" + cmd + "'");
    }
  }
  if (!saw_header) konata_error(rep, line_no, "empty file (no header)");
  if (!open.empty()) {
    konata_error(rep, line_no,
                 std::to_string(open.size()) +
                     " instruction(s) never retired (missing R)");
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON — strict recursive-descent parser, no duplication
// of the emitting code's assumptions.
// ---------------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  double number = 0.0;
  bool boolean = false;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      *error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      *error = "trailing data at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool fail(const std::string& what) {
    if (error_.empty()) error_ = what;
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }
  bool value(Json* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = Json::kString;
      return string(&out->text);
    }
    if (c == 't') {
      out->kind = Json::kBool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = Json::kBool;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return fail("bad \\u escape");
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return fail("bad escape character");
        }
        out->push_back(e);
        ++pos_;
      } else {
        if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
          return fail("unescaped control character in string");
        }
        out->push_back(s_[pos_++]);
      }
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }
  bool number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number");
    }
    out->kind = Json::kNumber;
    return true;
  }
  bool array(Json* out) {
    out->kind = Json::kArray;
    ++pos_;  // [
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json item;
      if (!value(&item)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (s_[pos_] != ',') return fail("expected ',' in array");
      ++pos_;
      skip_ws();
    }
  }
  bool object(Json* out) {
    out->kind = Json::kObject;
    ++pos_;  // {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json item;
      if (!value(&item)) return false;
      out->fields.emplace(std::move(key), std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (s_[pos_] != ',') return fail("expected ',' in object");
      ++pos_;
      skip_ws();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

struct ChromeReport {
  std::vector<std::string> errors;
  std::size_t complete_events = 0;
  std::size_t metadata_events = 0;
};

ChromeReport check_chrome(const std::string& text) {
  ChromeReport rep;
  Json root;
  std::string error;
  if (!JsonParser(text).parse(&root, &error)) {
    rep.errors.push_back("JSON parse failed: " + error);
    return rep;
  }
  if (root.kind != Json::kObject) {
    rep.errors.push_back("top level is not an object");
    return rep;
  }
  const Json* version = root.find("schema_version");
  if (version == nullptr || version->kind != Json::kNumber) {
    rep.errors.push_back("missing numeric schema_version");
  } else if (static_cast<int>(version->number) != kMetricsSchemaVersion) {
    rep.errors.push_back("schema_version mismatch: expected " +
                         std::to_string(kMetricsSchemaVersion));
  }
  const Json* events = root.find("traceEvents");
  if (events == nullptr || events->kind != Json::kArray) {
    rep.errors.push_back("missing traceEvents array");
    return rep;
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const Json& ev = events->items[i];
    auto bad = [&](const std::string& what) {
      if (rep.errors.size() < 20) {
        rep.errors.push_back("event " + std::to_string(i) + ": " + what);
      }
    };
    if (ev.kind != Json::kObject) {
      bad("not an object");
      continue;
    }
    const Json* name = ev.find("name");
    if (name == nullptr || name->kind != Json::kString || name->text.empty()) {
      bad("missing name");
    }
    const Json* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != Json::kString) {
      bad("missing ph");
      continue;
    }
    const Json* pid = ev.find("pid");
    const Json* tid = ev.find("tid");
    if (pid == nullptr || pid->kind != Json::kNumber || tid == nullptr ||
        tid->kind != Json::kNumber) {
      bad("missing numeric pid/tid");
    }
    if (ph->text == "M") {
      ++rep.metadata_events;
      continue;
    }
    if (ph->text != "X") {
      bad("unexpected phase '" + ph->text + "'");
      continue;
    }
    ++rep.complete_events;
    const Json* ts = ev.find("ts");
    const Json* dur = ev.find("dur");
    if (ts == nullptr || ts->kind != Json::kNumber || ts->number < 0) {
      bad("complete event needs nonnegative ts");
    }
    if (dur == nullptr || dur->kind != Json::kNumber || dur->number < 0) {
      bad("complete event needs nonnegative dur");
    }
    const Json* args = ev.find("args");
    if (args == nullptr || args->kind != Json::kObject) {
      bad("complete event needs an args object");
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Campaign JSONL — header schema validation plus per-record shape checks.
// ---------------------------------------------------------------------------

struct JsonlReport {
  std::vector<std::string> errors;
  std::size_t runs = 0;
  std::size_t autopsies = 0;
};

std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

JsonlReport check_campaign_jsonl(std::istream& in) {
  JsonlReport rep;
  auto bad = [&](std::size_t line_no, const std::string& what) {
    if (rep.errors.size() < 20) {
      rep.errors.push_back("line " + std::to_string(line_no) + ": " + what);
    }
  };
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      // The header is load-bearing: a schema_version this build does not
      // understand means every record that follows may be misread, so the
      // whole file is rejected here rather than skipped record-by-record.
      std::string error;
      if (!validate_campaign_jsonl_header(line, &error)) {
        bad(line_no, error);
        return rep;
      }
      saw_header = true;
      continue;
    }
    const std::string kind = extract_string_field(line, "record");
    if (kind == "footer") continue;
    if (kind == "autopsy") {
      ++rep.autopsies;
      continue;
    }
    if (!kind.empty()) {
      bad(line_no, "unknown record kind '" + kind + "'");
      continue;
    }
    const std::string outcome = extract_string_field(line, "outcome");
    FaultOutcome parsed = FaultOutcome::kBenign;
    if (outcome.empty() || !parse_fault_outcome(outcome, &parsed)) {
      bad(line_no, "run record with unknown outcome '" + outcome + "'");
      continue;
    }
    // The fault description's first token is the site vocabulary: a
    // hard-fault site name (frontend-decoder, backend-result, iq-payload,
    // regfile-entry, lvq-slot, dtq-slot) or "transient" for soft errors.
    // Anything else is a record this build cannot attribute to a site.
    const std::string fault = extract_string_field(line, "fault");
    const std::string site_token = fault.substr(0, fault.find(' '));
    FaultSite site = FaultSite::kBackendResult;
    if (site_token != "transient" && !parse_fault_site(site_token, &site)) {
      bad(line_no, "run record with unknown fault site '" + site_token + "'");
      continue;
    }
    if (line.find("\"index\":") == std::string::npos) {
      bad(line_no, "run record without a fault index");
      continue;
    }
    ++rep.runs;
  }
  if (!saw_header) bad(line_no, "empty file (no campaign header)");
  return rep;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

int report_result(const std::string& what,
                  const std::vector<std::string>& errors,
                  const std::string& summary) {
  if (errors.empty()) {
    std::cout << "OK " << what << ": " << summary << "\n";
    return 0;
  }
  std::cerr << "FAIL " << what << ":\n";
  for (const std::string& e : errors) std::cerr << "  " << e << "\n";
  return 1;
}

int check_konata_stream(const std::string& what, std::istream& in) {
  const KonataReport rep = check_konata(in);
  return report_result(
      what, rep.errors,
      std::to_string(rep.instructions) + " instructions (" +
          std::to_string(rep.retired) + " retired, " +
          std::to_string(rep.flushed) + " flushed), " +
          std::to_string(rep.cycle_advances) + " cycle advances");
}

int check_chrome_text(const std::string& what, const std::string& text) {
  const ChromeReport rep = check_chrome(text);
  return report_result(what, rep.errors,
                       std::to_string(rep.complete_events) +
                           " complete events, " +
                           std::to_string(rep.metadata_events) + " metadata");
}

int check_jsonl_text(const std::string& what, const std::string& text) {
  std::istringstream in(text);
  const JsonlReport rep = check_campaign_jsonl(in);
  return report_result(what, rep.errors,
                       std::to_string(rep.runs) + " run records, " +
                           std::to_string(rep.autopsies) + " autopsies");
}

int selftest() {
  int failures = 0;

  // 1. Traced BlackJack simulation, both exporters.
  PipelineTracer tracer(1u << 16, 0);
  SimRequest request;
  request.mode = Mode::kBlackjack;
  request.warmup_commits = 500;
  request.budget_commits = 4000;
  request.tracer = &tracer;
  const SimResult sim =
      run_workload(profile_by_name("gcc"), request);
  if (!sim.finished && sim.cycles == 0) {
    std::cerr << "FAIL selftest: traced simulation made no progress\n";
    return 1;
  }
  if (tracer.total_recorded() == 0) {
    std::cerr << "FAIL selftest: tracer recorded nothing\n";
    return 1;
  }
  std::ostringstream konata;
  tracer.write_konata(konata);
  {
    std::istringstream in(konata.str());
    failures += check_konata_stream("selftest konata", in);
  }
  std::ostringstream chrome;
  tracer.write_chrome(chrome);
  failures += check_chrome_text("selftest chrome", chrome.str());

  // 2. Traced campaign: worker lanes + run spans through the same chrome
  // validator, plus the JSONL header record.
  const Program program = generate_workload(profile_by_name("eon"));
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 6;
  config.budget_commits = 3000;
  config.seed = 99;
  CampaignTraceLog log;
  std::ostringstream jsonl;
  ParallelCampaignOptions options;
  options.jobs = 2;
  options.trace = &log;
  options.jsonl = &jsonl;
  run_campaign_parallel(program, config, options);
  if (log.size() == 0) {
    std::cerr << "FAIL selftest: campaign trace recorded no spans\n";
    ++failures;
  }
  std::ostringstream campaign_chrome;
  log.write_chrome(campaign_chrome);
  failures += check_chrome_text("selftest campaign chrome",
                                campaign_chrome.str());
  const std::string first_line = jsonl.str().substr(0, jsonl.str().find('\n'));
  if (first_line.find("\"record\":\"header\"") == std::string::npos ||
      first_line.find("\"config_digest\":") == std::string::npos) {
    std::cerr << "FAIL selftest: campaign JSONL does not start with a header "
                 "record\n";
    ++failures;
  } else {
    std::cout << "OK selftest jsonl header\n";
  }

  // 3. Campaign JSONL validator: the streamed output must pass, and a copy
  // whose header schema_version was tampered with must FAIL — silently
  // skipping a schema mismatch would let analysis quietly misread records.
  const std::string streamed = jsonl.str();
  failures += check_jsonl_text("selftest campaign jsonl", streamed);
  const std::string schema_key = "\"schema_version\":";
  std::string tampered = streamed;
  tampered.replace(tampered.find(schema_key) + schema_key.size(), 1, "9");
  {
    std::istringstream in(tampered);
    const JsonlReport rep = check_campaign_jsonl(in);
    if (rep.errors.empty() ||
        rep.errors[0].find("schema_version") == std::string::npos) {
      std::cerr << "FAIL selftest: schema-tampered JSONL header was not "
                   "rejected\n";
      ++failures;
    } else {
      std::cout << "OK selftest jsonl schema tamper rejected\n";
    }
  }
  {
    // An unknown outcome string is tampering too.
    std::istringstream in(streamed.substr(0, streamed.find("\"outcome\":\"") +
                                                 11) +
                          "mystery\"}\n");
    const JsonlReport rep = check_campaign_jsonl(in);
    if (rep.errors.empty()) {
      std::cerr << "FAIL selftest: unknown-outcome record was not rejected\n";
      ++failures;
    } else {
      std::cout << "OK selftest jsonl unknown outcome rejected\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

int usage() {
  std::cout << "trace_check — validate bjsim trace files\n"
               "  trace_check --format=konata FILE\n"
               "  trace_check --format=chrome FILE\n"
               "  trace_check --format=jsonl FILE\n"
               "  trace_check --selftest\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help") || flags.has("h")) return usage();
  try {
    if (flags.get_bool("selftest")) return selftest();
    if (flags.positional().empty()) return usage();
    const std::string path = flags.positional().front();
    const std::string format = flags.get("format", "konata");
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    if (format == "konata") return check_konata_stream(path, in);
    if (format == "chrome" || format == "jsonl") {
      std::stringstream buffer;
      buffer << in.rdbuf();
      return format == "chrome" ? check_chrome_text(path, buffer.str())
                                : check_jsonl_text(path, buffer.str());
    }
    std::cerr << "error: unknown format " << format << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
