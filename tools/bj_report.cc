// bj_report — offline campaign coverage reports from stored JSONL.
//
// Consumes the campaign store's runs.jsonl / autopsy.jsonl (loose files,
// campaign directories, shard directories, or a whole store root) and emits
// the paper-shaped aggregates without re-simulating anything: the
// per-(workload, mode, fault-site) coverage matrix (Figure 4/5 shape), the
// SDC-escape table enriched with autopsy forensics, and detection-latency
// percentiles (Figure 7 shape).
//
//   bj_report PATH...                  JSON report on stdout
//   bj_report --out report.json PATH...
//   bj_report --html report.html PATH...   self-contained heatmap page
//   bj_report --selftest               hermetic parser/aggregation check
//
// Schema-tampered headers, unknown outcomes, and truncated files reject the
// whole offending file: it lands in the report's "errors" array and the exit
// status is nonzero.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "harness/report.h"

using namespace bj;

namespace {

int usage() {
  std::cout << "bj_report — offline campaign coverage reports\n"
               "  bj_report PATH...                 JSON report on stdout\n"
               "  bj_report --out FILE PATH...      JSON report to FILE\n"
               "  bj_report --html FILE PATH...     self-contained HTML "
               "heatmap to FILE\n"
               "  bj_report --selftest              hermetic self-check\n"
               "PATH is a runs.jsonl / autopsy.jsonl file, a campaign store\n"
               "directory, or a store root (all campaigns under it).\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help") || flags.has("h")) return usage();
  try {
    if (flags.get_bool("selftest")) {
      if (!report_selftest()) return 1;
      std::cout << "OK bj_report selftest\n";
      return 0;
    }
    if (flags.positional().empty()) return usage();

    const CampaignReport report = build_campaign_report(flags.positional());
    const std::string json = campaign_report_json(report);
    const std::string out = flags.get("out", "");
    if (out.empty()) {
      std::cout << json;
    } else if (!write_file(out, json)) {
      std::cerr << "error: cannot write " << out << "\n";
      return 1;
    }
    const std::string html = flags.get("html", "");
    if (!html.empty() && !write_file(html, campaign_report_html(report))) {
      std::cerr << "error: cannot write " << html << "\n";
      return 1;
    }

    for (const std::string& error : report.errors) {
      std::cerr << "error: " << error << "\n";
    }
    if (report.ok() && report.files == 0) {
      std::cerr << "error: nothing ingested\n";
      return 1;
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
